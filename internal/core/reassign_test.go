package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/diskio"
	"hybridgraph/internal/faultplan"
	"hybridgraph/internal/graph"
)

// TestReassignMatrix is the tentpole acceptance matrix: killing one worker
// permanently at a seeded superstep under the reassign policy must yield
// final values byte-identical to a fault-free run across the three core
// algorithms and the three loggable engines — the partition moved, the
// numbers did not. It also asserts the degradation bookkeeping: one
// adoption, migration bytes charged, the dead worker absent from every
// post-reassignment superstep, and the migration landing fields matching
// between the trace and the StepStats.
func TestReassignMatrix(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 71)
	const failStep, failWorker = 5, 1
	plan := faultplan.NewPlan(faultplan.PermanentCrash(failStep, failWorker))
	for name, prog := range map[string]algo.Program{
		"pagerank": algo.NewPageRank(0.85),
		"sssp":     algo.NewSSSP(0),
		"wcc":      algo.NewWCC(),
	} {
		for _, e := range []Engine{Push, BPull, Hybrid} {
			t.Run(name+"/"+string(e), func(t *testing.T) {
				base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3}
				clean, err := Run(g, prog, base, e)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				cfg := base
				cfg.Recovery = "reassign"
				cfg.FaultPlan = plan
				cfg.TraceWriter = &buf
				res, err := Run(g, prog, cfg, e)
				if err != nil {
					t.Fatal(err)
				}
				if res.Reassignments != 1 {
					t.Fatalf("Reassignments = %d, want 1", res.Reassignments)
				}
				if !res.Degraded {
					t.Fatal("Degraded = false after a permanent worker loss")
				}
				if res.MigrationIO.Total() <= 0 {
					t.Fatalf("MigrationIO = %d, want > 0", res.MigrationIO.Total())
				}
				if res.MigrationNetBytes <= 0 {
					t.Fatalf("MigrationNetBytes = %d, want > 0", res.MigrationNetBytes)
				}
				for v := range clean.Values {
					if res.Values[v] != clean.Values[v] {
						t.Fatalf("vertex %d = %g, fault-free run has %g",
							v, res.Values[v], clean.Values[v])
					}
				}
				if res.Supersteps() != clean.Supersteps() {
					t.Fatalf("%d supersteps, fault-free run took %d",
						res.Supersteps(), clean.Supersteps())
				}

				p := parseTrace(t, buf.Bytes())
				if len(p.reassigns) != 1 {
					t.Fatalf("reassign events = %d, want 1", len(p.reassigns))
				}
				re := p.reassigns[0]
				if re.Worker != failWorker || re.Host == failWorker ||
					re.Reason != "permanent-crash" || re.Epoch < 2 {
					t.Fatalf("reassign event = %+v", re)
				}
				if re.MigrationIOBytes != res.MigrationIO.Total() ||
					re.MigrationNetBytes != res.MigrationNetBytes {
					t.Fatalf("reassign event migration bytes %d/%d != result %d/%d",
						re.MigrationIOBytes, re.MigrationNetBytes,
						res.MigrationIO.Total(), res.MigrationNetBytes)
				}
				if len(p.adoptBlocks) == 0 {
					t.Fatal("no adopt_block events journaled")
				}
				covered := 0
				for _, ab := range p.adoptBlocks {
					if ab.From != failWorker || ab.To != re.Host || ab.Epoch != re.Epoch {
						t.Fatalf("adopt_block event = %+v", ab)
					}
					covered += ab.Vcount
				}
				if part := graph.RangePartition(g.NumVertices, 3)[failWorker]; covered != part.Len() {
					t.Fatalf("adopt_block events cover %d vertices, partition has %d",
						covered, part.Len())
				}

				// The dead worker never executes on its own machine again:
				// every post-reassignment step shows its unit hosted elsewhere
				// and no unit hosted by the dead machine.
				for _, ev := range p.workerSteps {
					if ev.Step < failStep {
						if ev.Host != ev.Worker {
							t.Fatalf("step %d worker %d hosted by %d before the failure",
								ev.Step, ev.Worker, ev.Host)
						}
						continue
					}
					if ev.Host == failWorker && ev.Worker != failWorker {
						t.Fatalf("step %d: unit %d hosted by the dead worker", ev.Step, ev.Worker)
					}
					if ev.Worker == failWorker && ev.Host != re.Host {
						t.Fatalf("step %d: dead worker's unit hosted by %d, want %d",
							ev.Step, ev.Host, re.Host)
					}
				}

				// Migration landing cross-check: per-step worker-event sums
				// reproduce the StepStats migration fields, and the step sums
				// reproduce the JobResult totals (the failure step itself ran
				// post-adoption, so the landing is on a recorded step).
				var lio diskio.Snapshot
				var lnet int64
				byStep := map[int][]int{}
				for i, ev := range p.workerSteps {
					byStep[ev.Step] = append(byStep[ev.Step], i)
				}
				for _, st := range res.Steps {
					var sio diskio.Snapshot
					var snet int64
					for _, i := range byStep[st.Step] {
						sio = sio.Add(p.workerSteps[i].MigrationIO)
						snet += p.workerSteps[i].MigrationNetBytes
					}
					if sio != st.MigrationIO || snet != st.MigrationNetBytes {
						t.Fatalf("step %d: worker migration sums %v/%d != stats %v/%d",
							st.Step, sio, snet, st.MigrationIO, st.MigrationNetBytes)
					}
					lio = lio.Add(st.MigrationIO)
					lnet += st.MigrationNetBytes
				}
				if lio != res.MigrationIO || lnet != res.MigrationNetBytes {
					t.Fatalf("step migration sums %v/%d != result %v/%d",
						lio, lnet, res.MigrationIO, res.MigrationNetBytes)
				}
			})
		}
	}
}

// TestReassignTCP runs the adoption over the loopback TCP fabric: the
// rehomed slot's traffic crosses a real socket to the adopting host, and
// stale-epoch rejection plus re-routing must leave the values untouched.
func TestReassignTCP(t *testing.T) {
	g := graph.GenRMAT(400, 3000, 0.57, 0.19, 0.19, 72)
	for _, e := range []Engine{Push, BPull} {
		t.Run(string(e), func(t *testing.T) {
			base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 7, CheckpointEvery: 3, TCP: true}
			clean, err := Run(g, algo.NewPageRank(0.85), base, e)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Recovery = "reassign"
			cfg.FaultPlan = faultplan.NewPlan(faultplan.PermanentCrash(4, 2))
			res, err := Run(g, algo.NewPageRank(0.85), cfg, e)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reassignments != 1 || !res.Degraded {
				t.Fatalf("Reassignments=%d Degraded=%v, want 1/true", res.Reassignments, res.Degraded)
			}
			for v := range clean.Values {
				if res.Values[v] != clean.Values[v] {
					t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
				}
			}
		})
	}
}

// TestReassignCrashLimitEscalation: a transient crash recovers in place
// (confined-style), and only when the same worker exceeds MaxRestarts is
// its partition handed away.
func TestReassignCrashLimitEscalation(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 73)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 9, CheckpointEvery: 3}
	clean, err := Run(g, algo.NewPageRank(0.85), base, Push)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := base
	cfg.Recovery = "reassign"
	cfg.MaxRestarts = 1
	cfg.FaultPlan = faultplan.NewPlan(
		faultplan.Crash{Step: 3, Worker: 1},
		faultplan.Crash{Step: 6, Worker: 1})
	cfg.TraceWriter = &buf
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2", res.Restarts)
	}
	if res.Reassignments != 1 {
		t.Fatalf("Reassignments = %d, want 1 (second failure exceeds MaxRestarts)", res.Reassignments)
	}
	p := parseTrace(t, buf.Bytes())
	if len(p.reassigns) != 1 || p.reassigns[0].Reason != "crash-limit" ||
		p.reassigns[0].Step != 6 || p.reassigns[0].Crashes != 2 {
		t.Fatalf("reassign events = %+v, want one crash-limit adoption at step 6", p.reassigns)
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
}

// TestReassignStallLimitEscalation: repeated stalls of the same worker
// count toward permanence like crashes do.
func TestReassignStallLimitEscalation(t *testing.T) {
	g := graph.GenRMAT(400, 3000, 0.57, 0.19, 0.19, 74)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3}
	clean, err := Run(g, algo.NewSSSP(0), base, Push)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := base
	cfg.Recovery = "reassign"
	cfg.MaxRestarts = 1
	cfg.FaultPlan = faultplan.NewPlan().WithStalls(
		faultplan.Stall{Step: 3, Worker: 2},
		faultplan.Stall{Step: 5, Worker: 2})
	cfg.BarrierDeadline = 50 * time.Millisecond
	cfg.TraceWriter = &buf
	res, err := Run(g, algo.NewSSSP(0), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 2 || res.Reassignments != 1 {
		t.Fatalf("Stalls=%d Reassignments=%d, want 2/1", res.Stalls, res.Reassignments)
	}
	p := parseTrace(t, buf.Bytes())
	if len(p.reassigns) != 1 || p.reassigns[0].Reason != "stall-limit" ||
		p.reassigns[0].Stalls != 2 {
		t.Fatalf("reassign events = %+v, want one stall-limit adoption", p.reassigns)
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
}

// TestReassignChainedHostDeath: the host carrying an adopted partition
// dies too. Both its own unit and the orphaned one must re-home to the
// remaining survivor and the values still match bit for bit.
func TestReassignChainedHostDeath(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 75)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 9, CheckpointEvery: 3}
	clean, err := Run(g, algo.NewPageRank(0.85), base, Push)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := base
	cfg.Recovery = "reassign"
	// Worker 1 dies at 3 and is adopted by the least-loaded survivor
	// (worker 0, lowest id). Worker 0 — now carrying units 0 and 1 — dies
	// at 6, orphaning unit 1 again; both re-home to worker 2.
	cfg.FaultPlan = faultplan.NewPlan(
		faultplan.PermanentCrash(3, 1),
		faultplan.PermanentCrash(6, 0))
	cfg.TraceWriter = &buf
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassignments != 3 {
		t.Fatalf("Reassignments = %d, want 3 (worker 1, then worker 0 and orphaned 1)", res.Reassignments)
	}
	p := parseTrace(t, buf.Bytes())
	if len(p.reassigns) != 3 {
		t.Fatalf("reassign events = %d, want 3", len(p.reassigns))
	}
	if p.reassigns[0].Worker != 1 || p.reassigns[0].Host != 0 {
		t.Fatalf("first adoption = %+v, want worker 1 onto host 0", p.reassigns[0])
	}
	orphaned := false
	for _, re := range p.reassigns[1:] {
		if re.Host != 2 {
			t.Fatalf("post-chain adoption on host %d, want the last survivor 2", re.Host)
		}
		if re.Worker == 1 && re.Reason == "host-lost" {
			orphaned = true
		}
	}
	if !orphaned {
		t.Fatal("no host-lost re-adoption of the orphaned unit journaled")
	}
	for _, ev := range p.workerSteps {
		if ev.Step >= 6 && ev.Host != 2 {
			t.Fatalf("step %d: unit %d hosted by %d, want 2 after the chain", ev.Step, ev.Worker, ev.Host)
		}
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
}

// TestReassignLastSurvivorDies: losing the final live worker is a typed
// job failure, not a hang or a silent wrong answer.
func TestReassignLastSurvivorDies(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 76)
	cfg := Config{Workers: 2, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3,
		Recovery: "reassign",
		FaultPlan: faultplan.NewPlan(
			faultplan.PermanentCrash(3, 0),
			faultplan.PermanentCrash(5, 1))}
	_, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err == nil {
		t.Fatal("job survived losing every worker")
	}
	if !errors.Is(err, ErrNoSurvivors) {
		t.Fatalf("error does not match ErrNoSurvivors: %v", err)
	}
}

// TestReassignResumeAfterAdoption: a checkpoint committed after an
// adoption records the ownership table; a resumed run (the daemon-restart
// path) must continue with the shrunken worker set and still produce the
// fault-free values.
func TestReassignResumeAfterAdoption(t *testing.T) {
	g := graph.GenRMAT(400, 3000, 0.57, 0.19, 0.19, 77)
	clean, err := Run(g, algo.NewPageRank(0.85),
		Config{Workers: 3, MsgBuf: 100, MaxSteps: 8}, Push)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	first := Config{Workers: 3, MsgBuf: 100, MaxSteps: 4, CheckpointEvery: 3,
		Recovery: "reassign", WorkDir: dir, KeepFiles: true,
		FaultPlan: faultplan.NewPlan(faultplan.PermanentCrash(2, 1))}
	fres, err := Run(g, algo.NewPageRank(0.85), first, Push)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Reassignments != 1 {
		t.Fatalf("first run Reassignments = %d, want 1", fres.Reassignments)
	}
	// The daemon restarts: same WorkDir, no fault plan (the machine is
	// simply gone), resume from the committed checkpoint at step 3 — which
	// was taken after the adoption and carries the ownership table.
	second := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3,
		Recovery: "reassign", WorkDir: dir, KeepFiles: true,
		ResumeFromCheckpoint: true}
	res, err := Run(g, algo.NewPageRank(0.85), second, Push)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", res.Restores)
	}
	if !res.Degraded {
		t.Fatal("resumed run not marked Degraded despite the recorded loss")
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, fault-free run has %g", v, res.Values[v], clean.Values[v])
		}
	}
	if res.Supersteps() != clean.Supersteps()-3 {
		t.Fatalf("resumed run recorded %d supersteps, want %d (resume at 4)",
			res.Supersteps(), clean.Supersteps()-3)
	}
}

// TestReassignParallelCompute runs the adoption matrix leg at
// Parallelism=8: the sharded update scans on the host machine — its own
// unit plus the adopted one — must stay bit-exact (run under -race in CI).
func TestReassignParallelCompute(t *testing.T) {
	g := graph.GenRMAT(500, 4000, 0.57, 0.19, 0.19, 78)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 8, CheckpointEvery: 3, Parallelism: 1}
	clean, err := Run(g, algo.NewPageRank(0.85), base, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Parallelism = 8
	cfg.Recovery = "reassign"
	cfg.FaultPlan = faultplan.NewPlan(faultplan.PermanentCrash(4, 1))
	res, err := Run(g, algo.NewPageRank(0.85), cfg, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassignments != 1 {
		t.Fatalf("Reassignments = %d, want 1", res.Reassignments)
	}
	for v := range clean.Values {
		if res.Values[v] != clean.Values[v] {
			t.Fatalf("vertex %d = %g, Parallelism=1 fault-free run has %g",
				v, res.Values[v], clean.Values[v])
		}
	}
}

// TestReassignDiskFaultSweep is the satellite contract: storage faults
// injected while an adoption is in flight (snapshot reads, store
// rebuilds, log replays) end in values byte-identical to the fault-free
// run or a typed disk-fault failure — never silent corruption.
func TestReassignDiskFaultSweep(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 79)
	clean, err := Run(g, algo.NewPageRank(0.85),
		Config{Workers: 3, MsgBuf: 80, MaxSteps: 6}, Push)
	if err != nil {
		t.Fatal(err)
	}
	completed, failed, faultsSeen := 0, 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 6,
			Recovery: "reassign", CheckpointEvery: 2,
			FaultPlan: faultplan.NewPlan(faultplan.PermanentCrash(4, 1)).
				WithDisk(diskio.FaultConfig{
					Seed:     seed,
					SyncFail: 0.10,
				})}
		res, err := Run(g, algo.NewPageRank(0.85), cfg, Push)
		if err != nil {
			if !errors.Is(err, diskio.ErrDiskFault) {
				t.Fatalf("seed %d: error is not a typed disk fault: %v", seed, err)
			}
			failed++
			continue
		}
		completed++
		faultsSeen += res.DiskFaults
		if res.Reassignments != 1 {
			t.Fatalf("seed %d: Reassignments = %d, want 1", seed, res.Reassignments)
		}
		for v := range clean.Values {
			if res.Values[v] != clean.Values[v] {
				t.Fatalf("seed %d: vertex %d = %g, fault-free run has %g (silent divergence)",
					seed, v, res.Values[v], clean.Values[v])
			}
		}
	}
	if completed == 0 {
		t.Fatal("every seed failed: the sweep never exercised the byte-identity half")
	}
	if failed == 0 && faultsSeen == 0 {
		t.Fatal("no seed injected a fault: the sweep has no teeth")
	}

	// Power cut during the run with an adoption in flight: typed failure.
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 6,
		Recovery: "reassign", CheckpointEvery: 2,
		FaultPlan: faultplan.NewPlan(faultplan.PermanentCrash(4, 1)).
			WithDisk(diskio.FaultConfig{Seed: 5, PowerCutAfter: 60})}
	_, err = Run(g, algo.NewPageRank(0.85), cfg, Push)
	if err == nil {
		t.Fatal("job survived a simulated power cut")
	}
	if !errors.Is(err, diskio.ErrDiskFault) {
		t.Fatalf("power-cut error does not match ErrDiskFault: %v", err)
	}
}

// TestReassignRejects: configurations the policy cannot honour fail fast.
func TestReassignRejects(t *testing.T) {
	g := graph.GenUniform(100, 500, 80)
	cfg := Config{Workers: 2, MsgBuf: 50, MaxSteps: 4, Recovery: "reassign"}
	if _, err := Run(g, algo.NewPageRank(0.85), cfg, Pull); err == nil {
		t.Fatal("reassign + pull baseline should be rejected")
	}
	cfg.Async = true
	if _, err := Run(g, algo.NewSSSP(0), cfg, Push); err == nil {
		t.Fatal("reassign + async should be rejected")
	}
	cfg.Async = false
	cfg.Workers = 1
	if _, err := Run(g, algo.NewPageRank(0.85), cfg, Push); err == nil {
		t.Fatal("reassign with a single worker should be rejected")
	}
}

// TestReassignOnRecoveryHook: the scheduler-facing callback sees the
// in-place recovery and the adoption, in order, with the epoch attached.
func TestReassignOnRecoveryHook(t *testing.T) {
	g := graph.GenRMAT(300, 2200, 0.57, 0.19, 0.19, 81)
	var notices []RecoveryNotice
	cfg := Config{Workers: 3, MsgBuf: 80, MaxSteps: 8, CheckpointEvery: 3,
		Recovery: "reassign", MaxRestarts: 1,
		FaultPlan: faultplan.NewPlan(
			faultplan.Crash{Step: 3, Worker: 1},
			faultplan.Crash{Step: 6, Worker: 1}),
		OnRecovery: func(n RecoveryNotice) { notices = append(notices, n) }}
	if _, err := Run(g, algo.NewPageRank(0.85), cfg, Push); err != nil {
		t.Fatal(err)
	}
	if len(notices) != 3 {
		t.Fatalf("notices = %+v, want crash, crash, reassign", notices)
	}
	if notices[0].Kind != "crash" || notices[0].Worker != 1 || notices[0].Host != -1 {
		t.Fatalf("first notice = %+v", notices[0])
	}
	if notices[1].Kind != "crash" || notices[2].Kind != "reassign" {
		t.Fatalf("notices = %+v", notices)
	}
	if notices[2].Worker != 1 || notices[2].Host == 1 || notices[2].Epoch < 2 {
		t.Fatalf("reassign notice = %+v", notices[2])
	}
}
