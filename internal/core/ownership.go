package core

// ownership is the epoch-versioned block-ownership table the reassign
// policy maintains: which workers are permanently dead and which survivor
// hosts each dead worker's Vblock range. The table lives on the master
// (the job), is bumped to a new epoch on every adoption, and is mirrored
// into the comm fabric (comm.Rehomer) so in-flight traffic stamped with a
// dead epoch is rejected at the receiver and re-routed by the sender —
// never silently accepted by an endpoint that no longer owns the range.
//
// Adoption is whole-origin: a dead worker's entire partition moves to one
// survivor, and the adopted unit keeps answering at its origin slot (the
// fabric rewires the slot's address to the host). That choice is what
// keeps results byte-identical — b-pull's per-origin combine fold trees
// and push's per-origin packet canonicalisation both assume one origin is
// served by one endpoint, so splitting a range across hosts would reorder
// floating-point folds.
type ownership struct {
	epoch int64  // current ownership epoch; starts at 1, bumped per adoption
	dead  []bool // dead[w]: worker w is permanently lost
	hosts []int  // hosts[w]: worker hosting w's partition (w itself while alive)
}

func newOwnership(n int) *ownership {
	o := &ownership{epoch: 1, dead: make([]bool, n), hosts: make([]int, n)}
	for i := range o.hosts {
		o.hosts[i] = i
	}
	return o
}

// hostOf reports the worker hosting w's partition.
func (o *ownership) hostOf(w int) int { return o.hosts[w] }

// isDead reports whether w is permanently lost.
func (o *ownership) isDead(w int) bool { return o.dead[w] }

// anyDead reports whether any worker has been lost.
func (o *ownership) anyDead() bool {
	for _, d := range o.dead {
		if d {
			return true
		}
	}
	return false
}

// deadCount reports how many workers have been lost.
func (o *ownership) deadCount() int {
	n := 0
	for _, d := range o.dead {
		if d {
			n++
		}
	}
	return n
}

// markDead records the permanent loss of fw without assigning a host or
// bumping the epoch — the recovery driver marks every loss first so host
// picking sees the complete dead set, then adopts unit by unit.
func (o *ownership) markDead(fw int) { o.dead[fw] = true }

// adopt marks fw dead, assigns its partition to host, and bumps the
// epoch. Returns the new epoch.
func (o *ownership) adopt(fw, host int) int64 {
	o.dead[fw] = true
	o.hosts[fw] = host
	o.epoch++
	return o.epoch
}

// adoptedBy lists the dead origins hosted by h, ascending. The host's own
// id is never in the list.
func (o *ownership) adoptedBy(h int) []int {
	var out []int
	for w, hw := range o.hosts {
		if w != h && hw == h && o.dead[w] {
			out = append(out, w)
		}
	}
	return out
}

// survivors lists the live worker ids, ascending.
func (o *ownership) survivors() []int {
	var out []int
	for w, d := range o.dead {
		if !d {
			out = append(out, w)
		}
	}
	return out
}
