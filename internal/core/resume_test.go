package core

import (
	"testing"

	"hybridgraph/internal/algo"
	"hybridgraph/internal/graph"
)

// TestResumeRecoveryCorrectAndCheaper exercises the lightweight
// fault-tolerance policy on self-correcting algorithms: after a crash,
// values survive and the restart re-announces them, so WCC resumes where
// it left off instead of re-flooding from scratch.
func TestResumeRecoveryCorrectAndCheaper(t *testing.T) {
	g := algo.Symmetrize(graph.GenChain(120, 0, 63))
	prog := algo.NewWCC()
	base := Config{Workers: 3, MsgBuf: 30, MaxSteps: 300}

	clean, err := Run(g, prog, base, BPull)
	if err != nil {
		t.Fatal(err)
	}

	failAt := clean.Supersteps() * 2 / 3
	scratch := base
	scratch.FailStep = failAt
	scratchRes, err := Run(g, prog, scratch, BPull)
	if err != nil {
		t.Fatal(err)
	}

	resume := scratch
	resume.Recovery = "resume"
	resumeRes, err := Run(g, prog, resume, BPull)
	if err != nil {
		t.Fatal(err)
	}

	for v := range clean.Values {
		if resumeRes.Values[v] != clean.Values[v] {
			t.Fatalf("resume recovery wrong at vertex %d: %g vs %g",
				v, resumeRes.Values[v], clean.Values[v])
		}
		if scratchRes.Values[v] != clean.Values[v] {
			t.Fatalf("scratch recovery wrong at vertex %d", v)
		}
	}
	// Resume restarts from two-thirds-propagated labels, so its second
	// attempt needs far fewer supersteps than recomputing from scratch.
	if resumeRes.Supersteps() >= scratchRes.Supersteps() {
		t.Fatalf("resume took %d supersteps, scratch %d; lightweight recovery should be cheaper",
			resumeRes.Supersteps(), scratchRes.Supersteps())
	}
	if resumeRes.Restarts != 1 || scratchRes.Restarts != 1 {
		t.Fatal("both runs should report one restart")
	}
}

// TestResumeRecoveryConvergingPageRank checks the paper's motivating
// case: PageRank converges to the same ranks from any starting state, so
// resuming from mid-run values is sound (and cheap).
func TestResumeRecoveryConvergingPageRank(t *testing.T) {
	g := graph.GenRMAT(500, 6000, 0.57, 0.19, 0.19, 64)
	prog := algo.NewConvergingPageRank(0.85, 1e-6)
	base := Config{Workers: 3, MsgBuf: 100, MaxSteps: 120}

	clean, err := Run(g, prog, base, Push)
	if err != nil {
		t.Fatal(err)
	}
	resume := base
	resume.FailStep = 6
	resume.Recovery = "resume"
	res, err := Run(g, prog, resume, Push)
	if err != nil {
		t.Fatal(err)
	}
	for v := range clean.Values {
		if d := res.Values[v] - clean.Values[v]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("vertex %d: resumed rank %g vs clean %g", v, res.Values[v], clean.Values[v])
		}
	}
}
