module hybridgraph

go 1.22
