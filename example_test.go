package hybridgraph_test

import (
	"fmt"

	"hybridgraph"
)

// ExampleRun computes single-source shortest paths over a small chain
// with the hybrid engine.
func ExampleRun() {
	g, err := hybridgraph.ParseEdgeList([]byte(
		"# vertices 5\n0 1 1\n1 2 1\n2 3 1\n3 4 1\n"))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	res, err := hybridgraph.Run(g, hybridgraph.SSSP(0),
		hybridgraph.Config{Workers: 2, MaxSteps: 10}, hybridgraph.Hybrid)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("supersteps: %d\n", res.Supersteps())
	fmt.Printf("distance to vertex 4: %.0f\n", res.Values[4])
	// Output:
	// supersteps: 6
	// distance to vertex 4: 4
}

// ExampleRun_engines compares the network traffic of push and b-pull on
// the same job: block-centric pulling concatenates and combines messages,
// push cannot.
func ExampleRun_engines() {
	g := hybridgraph.GenUniform(500, 7500, 7)
	cfg := hybridgraph.Config{Workers: 4, MsgBuf: 100, MaxSteps: 3}
	push, _ := hybridgraph.Run(g, hybridgraph.PageRank(0.85), cfg, hybridgraph.Push)
	bpull, _ := hybridgraph.Run(g, hybridgraph.PageRank(0.85), cfg, hybridgraph.BPull)
	fmt.Println("b-pull moves fewer bytes:", bpull.NetBytes < push.NetBytes)
	// Output:
	// b-pull moves fewer bytes: true
}
