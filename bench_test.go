// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artefact, trimmed to bench-friendly
// scales), per-engine microbenchmarks, and ablations of the design
// choices DESIGN.md calls out. Run the full-size versions with
// `go run ./cmd/experiments -all`.
package hybridgraph_test

import (
	"fmt"
	"testing"

	"hybridgraph"
	"hybridgraph/internal/harness"
)

func benchOpts() harness.Options {
	return harness.Options{Scale: 0.05, Workers: 3, LargeWorkers: 4, Quick: true}
}

func benchExperiment(b *testing.B, name string) {
	exp, ok := harness.ByName(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per paper artefact.

func BenchmarkFig02MessageBufferSweep(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkTable4Datasets(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkFig07SufficientMemory(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig08LimitedMemoryHDD(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig09LimitedMemorySSD(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10IOBytes(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11PredictMco(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12PredictCioPush(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13PredictCioBpull(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14HybridTrace(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15Scalability(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16Loading(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17BlockingTime(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18NetworkTraffic(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig23VblockSweepLivej(b *testing.B)   { benchExperiment(b, "fig23") }
func BenchmarkFig24VblockSweepWiki(b *testing.B)    { benchExperiment(b, "fig24") }
func BenchmarkFig25VblockRuntime(b *testing.B)      { benchExperiment(b, "fig25") }
func BenchmarkFig26Combining(b *testing.B)          { benchExperiment(b, "fig26") }
func BenchmarkTable5PullScenarios(b *testing.B)     { benchExperiment(b, "table5") }

// Per-engine microbenchmarks: one PageRank job per iteration under the
// paper's limited-memory regime.

func benchEngine(b *testing.B, engine hybridgraph.Engine, cfg hybridgraph.Config) {
	g := hybridgraph.GenRMAT(2000, 30000, 0.57, 0.19, 0.19, 11)
	prog := hybridgraph.PageRank(0.85)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hybridgraph.Run(g, prog, cfg, engine)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SimSeconds, "sim-s/job")
			b.ReportMetric(float64(res.IO.DevTotal()), "dev-bytes/job")
		}
	}
}

func limitedBenchCfg() hybridgraph.Config {
	return hybridgraph.Config{Workers: 3, MsgBuf: 200, MaxSteps: 5, VertexCache: 500}
}

func BenchmarkEnginePush(b *testing.B)   { benchEngine(b, hybridgraph.Push, limitedBenchCfg()) }
func BenchmarkEnginePushM(b *testing.B)  { benchEngine(b, hybridgraph.PushM, limitedBenchCfg()) }
func BenchmarkEnginePull(b *testing.B)   { benchEngine(b, hybridgraph.Pull, limitedBenchCfg()) }
func BenchmarkEngineBPull(b *testing.B)  { benchEngine(b, hybridgraph.BPull, limitedBenchCfg()) }
func BenchmarkEngineHybrid(b *testing.B) { benchEngine(b, hybridgraph.Hybrid, limitedBenchCfg()) }

// Ablations of the design choices DESIGN.md calls out.

// BenchmarkAblationPrepull measures b-pull with and without pre-pulling
// the next Vblock while the current one updates (Section 4.3).
func BenchmarkAblationPrepull(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "prepull-on"
		if !on {
			name = "prepull-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := limitedBenchCfg()
			cfg.DisablePrepull = !on
			benchEngine(b, hybridgraph.BPull, cfg)
		})
	}
}

// BenchmarkAblationCombine measures b-pull with combining on (messages
// reduced at the sender) versus concatenation only.
func BenchmarkAblationCombine(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "combine-on"
		if !on {
			name = "combine-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := limitedBenchCfg()
			cfg.DisableCombine = !on
			benchEngine(b, hybridgraph.BPull, cfg)
		})
	}
}

// BenchmarkAblationSwitchInterval varies hybrid's Δt (the paper fixes 2).
func BenchmarkAblationSwitchInterval(b *testing.B) {
	for _, dt := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dt=%d", dt), func(b *testing.B) {
			g := hybridgraph.GenRMAT(2000, 30000, 0.6, 0.15, 0.15, 12)
			prog := hybridgraph.SSSP(0)
			cfg := limitedBenchCfg()
			cfg.MaxSteps = 30
			cfg.SwitchInterval = dt
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hybridgraph.Run(g, prog, cfg, hybridgraph.Hybrid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVblocks varies the Vblock count, the fragment-count
// trade-off of Theorem 1.
func BenchmarkAblationVblocks(b *testing.B) {
	for _, v := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("V=%d", v), func(b *testing.B) {
			cfg := limitedBenchCfg()
			cfg.BlocksPerWorker = v
			benchEngine(b, hybridgraph.BPull, cfg)
		})
	}
}

// BenchmarkAblationReordering compares b-pull over a locality-rich graph
// under a scrambled numbering versus a BFS renumbering (footnote 1: any
// partitioning method applies to VE-BLOCK by re-ordering vertices; better
// orderings mean fewer fragments and less IO(F^t)).
func BenchmarkAblationReordering(b *testing.B) {
	base := hybridgraph.GenWeb(2000, 24000, 40, 0.85, 13)
	perm := make([]hybridgraph.VertexID, 2000)
	for i := range perm {
		perm[i] = hybridgraph.VertexID((i*803 + 7) % 2000)
	}
	scrambled := hybridgraph.Relabel(base, perm)
	ordered := hybridgraph.Relabel(scrambled, hybridgraph.BFSOrder(scrambled))
	for _, tc := range []struct {
		name string
		g    *hybridgraph.Graph
	}{{"scrambled", scrambled}, {"bfs-ordered", ordered}} {
		b.Run(tc.name, func(b *testing.B) {
			prog := hybridgraph.PageRank(0.85)
			cfg := limitedBenchCfg()
			for i := 0; i < b.N; i++ {
				res, err := hybridgraph.Run(tc.g, prog, cfg, hybridgraph.BPull)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.SimSeconds, "sim-s/job")
					b.ReportMetric(float64(res.IO.DevTotal()), "dev-bytes/job")
				}
			}
		})
	}
}

// BenchmarkTCPTransport compares the in-process fabric against loopback
// TCP with gob framing.
func BenchmarkTCPTransport(b *testing.B) {
	for _, tcp := range []bool{false, true} {
		name := "local"
		if tcp {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			cfg := limitedBenchCfg()
			cfg.TCP = tcp
			benchEngine(b, hybridgraph.BPull, cfg)
		})
	}
}
