package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybridgraph/internal/catalog"
	"hybridgraph/internal/ingest"
	"hybridgraph/internal/service"
)

// runService dispatches the daemon subcommands.
func runService(cmd string, args []string) error {
	switch cmd {
	case "serve":
		return cmdServe(args)
	case "ingest":
		return cmdIngest(args)
	case "submit":
		return cmdSubmit(args)
	case "status":
		return cmdStatus(args)
	case "result":
		return cmdResult(args)
	case "cancel":
		return cmdCancel(args)
	case "ls":
		return cmdLs(args)
	case "workers":
		return cmdWorkers(args)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// serverFlag registers the shared -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8080", "daemon base URL")
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	data := fs.String("data", "hybridgraph-data", "data directory (catalog, job dirs, journals)")
	maxQueued := fs.Int("max-queued", 64, "admission: maximum queued jobs")
	maxConc := fs.Int("max-concurrent", 2, "admission: maximum concurrently running jobs")
	maxBuf := fs.Int("max-buffer", 0, "admission: per-worker message-buffer cap in messages (0 = uncapped)")
	grace := fs.Duration("drain-grace", 5*time.Second, "how long shutdown lets running jobs finish before cancelling")
	walDir := fs.String("wal-dir", "", "job WAL directory for crash-safe restarts (default <data>/wal; \"off\" disables durability)")
	fs.Parse(args)

	srv, err := service.NewServer(service.ServerConfig{
		Addr:          *addr,
		DataDir:       *data,
		MaxQueued:     *maxQueued,
		MaxConcurrent: *maxConc,
		MaxMsgBuf:     *maxBuf,
		DrainGrace:    *grace,
		WALDir:        *walDir,
	})
	if err != nil {
		return err
	}
	fmt.Printf("hybridgraph daemon listening on %s (data: %s)\n", srv.Addr, *data)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case sig := <-sigc:
		fmt.Printf("received %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace+10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	case err := <-done:
		return err
	}
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	server := serverFlag(fs)
	name := fs.String("name", "", "catalog name for the graph (required)")
	file := fs.String("file", "", "edge-list file to upload")
	stream := fs.Bool("stream", false, "stream -file to the bulk-import endpoint instead of inlining it (any size; text, binary HGE1, or gzip)")
	path := fs.String("path", "", "server-side edge-list file to stream-ingest (no upload)")
	memBudget := fs.String("mem-budget", "", "streaming builder memory budget, e.g. 64M or 1G (empty = unlimited)")
	gen := fs.String("gen", "", "generator kind instead of a file: rmat, web, uniform, chain")
	vertices := fs.Int("vertices", 10000, "generator vertex count")
	edges := fs.Int("edges", 80000, "generator edge count")
	seed := fs.Int64("seed", 1, "generator seed")
	workers := fs.Int("workers", 5, "partition count the stores are built for")
	blocks := fs.Int("blocks", 1, "Vblocks per worker")
	codecName := fs.String("codec", "", "block codec the catalog stores the layouts with: none, delta, lz")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("ingest: -name is required")
	}
	var budget int64
	if *memBudget != "" {
		var err error
		if budget, err = ingest.ParseBytes(*memBudget); err != nil {
			return err
		}
	}
	so := catalog.StreamOptions{Workers: *workers, BlocksPer: *blocks, Codec: *codecName, MemBudget: budget}
	c := service.NewClient(*server)
	switch {
	case *path != "":
		resp, err := c.IngestServerPath(context.Background(), *name, *path, so)
		if err != nil {
			return err
		}
		return printJSON(resp)
	case *file != "" && *stream:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		resp, err := c.IngestStream(context.Background(), *name, f, so)
		if err != nil {
			return err
		}
		return printJSON(resp)
	}
	req := service.IngestRequest{Name: *name, Workers: *workers, BlocksPer: *blocks,
		Codec: *codecName, MemBudget: budget}
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		req.EdgeList = string(data)
	case *gen != "":
		req.Generator = &service.GenSpec{Kind: *gen, Vertices: *vertices, Edges: *edges, Seed: *seed}
	default:
		return fmt.Errorf("ingest: one of -file, -path or -gen is required")
	}
	m, err := c.Ingest(context.Background(), req)
	if err != nil {
		return err
	}
	return printJSON(m)
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	graphName := fs.String("graph", "", "catalog graph name (required)")
	algoName := fs.String("algo", "pagerank", "algorithm: pagerank, pagerank-converging, sssp, lpa")
	engine := fs.String("engine", "hybrid", "engine: push, pushM, pull, b-pull, hybrid")
	steps := fs.Int("steps", 0, "maximum supersteps (0 = default)")
	buffer := fs.Int("buffer", 0, "message buffer per worker in messages (0 = unlimited)")
	source := fs.Int("source", 0, "source vertex for sssp")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	tcp := fs.Bool("tcp", false, "run worker communication over loopback TCP")
	recovery := fs.String("recovery", "", "recovery policy: scratch, resume, checkpoint, confined, reassign")
	maxRest := fs.Int("max-restarts", 0, "with -recovery reassign: per-worker failure budget before its partition is adopted (0 = default)")
	ckptEvery := fs.Int("ckpt-every", 0, "checkpoint every N supersteps (0 = policy default)")
	retries := fs.Int("retries", 0, "scheduler re-enqueues after a failure this many times")
	reqID := fs.String("request-id", "", "idempotency key: retried submits carrying the same id land on one job")
	codecName := fs.String("codec", "", "block codec for the job's scratch state (must match the graph's ingest codec; empty adopts it)")
	chargePhy := fs.Bool("charge-physical", false, "cost model charges physical (post-codec) bytes instead of logical bytes")
	wait := fs.Bool("wait", false, "block until the job reaches a terminal state")
	fs.Parse(args)
	if *graphName == "" {
		return fmt.Errorf("submit: -graph is required")
	}
	c := service.NewClient(*server)
	st, err := c.Submit(context.Background(), service.JobSpec{
		Graph:           *graphName,
		Algorithm:       *algoName,
		Engine:          *engine,
		MaxSteps:        *steps,
		MsgBuf:          *buffer,
		Source:          *source,
		Priority:        *priority,
		TCP:             *tcp,
		Recovery:        *recovery,
		MaxRestarts:     *maxRest,
		CheckpointEvery: *ckptEvery,
		Retries:         *retries,
		RequestID:       *reqID,
		Codec:           *codecName,
		ChargePhysical:  *chargePhy,
	})
	if err != nil {
		return err
	}
	if *wait {
		st, err = c.WaitJob(context.Background(), st.ID, 0)
		if err != nil {
			return err
		}
	}
	return printJSON(st)
}

// jobIDArg extracts the trailing job-id argument subcommands take.
func jobIDArg(fs *flag.FlagSet, cmd string) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("%s: want exactly one job id argument", cmd)
	}
	return fs.Arg(0), nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := jobIDArg(fs, "status")
	if err != nil {
		return err
	}
	st, err := service.NewClient(*server).Job(context.Background(), id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdResult(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := jobIDArg(fs, "result")
	if err != nil {
		return err
	}
	res, err := service.NewClient(*server).Result(context.Background(), id)
	if err != nil {
		return err
	}
	// JSON cannot carry the non-finite distances SSSP leaves on unreached
	// vertices; render those as strings and the rest as numbers.
	vals := make([]any, len(res.Values))
	for i, v := range res.Values {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			vals[i] = fmt.Sprint(v)
		} else {
			vals[i] = v
		}
	}
	cp := *res
	cp.Values = nil
	return printJSON(struct {
		Result any   `json:"result"`
		Values []any `json:"values"`
	}{cp, vals})
}

func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	id, err := jobIDArg(fs, "cancel")
	if err != nil {
		return err
	}
	st, err := service.NewClient(*server).Cancel(context.Background(), id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	c := service.NewClient(*server)
	ctx := context.Background()
	graphs, err := c.Graphs(ctx)
	if err != nil {
		return err
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("graphs (%d):\n", len(graphs))
	for _, m := range graphs {
		fmt.Printf("  %-20s %9dv %10de  workers=%d blocks=%v\n",
			m.Name, m.Vertices, m.Edges, m.Workers, m.BlocksPer)
	}
	fmt.Printf("jobs (%d):\n", len(jobs))
	for _, j := range jobs {
		extra := ""
		if j.State == service.JobDone {
			extra = fmt.Sprintf("  steps=%d sim=%.3fs", j.Steps, j.SimSeconds)
		} else if j.Error != "" {
			extra = "  " + j.Error
		}
		fmt.Printf("  %-12s %-10s %s/%s/%s%s\n",
			j.ID, j.State, j.Spec.Graph, j.Spec.Algorithm, j.Spec.Engine, extra)
	}
	return nil
}

func cmdWorkers(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	view, err := service.NewClient(*server).Workers(context.Background())
	if err != nil {
		return err
	}
	for _, row := range view {
		tag := ""
		if row.Degraded {
			tag = fmt.Sprintf("  DEGRADED (%d reassignments)", row.Reassignments)
		}
		fmt.Printf("%s (%s)%s\n", row.JobID, row.State, tag)
		for _, w := range row.Workers {
			state := "alive"
			if !w.Alive {
				state = fmt.Sprintf("dead, partition hosted by worker %d", w.Host)
			}
			fmt.Printf("  worker %d: %s  crashes=%d stalls=%d\n", w.Worker, state, w.Crashes, w.Stalls)
		}
	}
	if len(view) == 0 {
		fmt.Println("no jobs with worker-health records")
	}
	return nil
}
