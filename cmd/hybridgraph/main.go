// Command hybridgraph runs iterative graph jobs: either one synchronous
// job from flags (the legacy mode), or against a long-running graph
// service daemon via subcommands.
//
// One-shot mode:
//
//	hybridgraph -graph wiki -algo pagerank -engine hybrid -buffer 1000 -v
//	hybridgraph -file edges.txt -algo sssp -source 0 -engine b-pull
//
// Service mode:
//
//	hybridgraph serve -addr :8080 -data /var/lib/hybridgraph
//	hybridgraph ingest -server http://localhost:8080 -name web1 -gen web -vertices 10000 -edges 80000
//	hybridgraph submit -server http://localhost:8080 -graph web1 -algo pagerank -engine hybrid -wait
//	hybridgraph status job-000001 | result job-000001 | cancel job-000001 | ls | workers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hybridgraph"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve", "ingest", "submit", "status", "result", "cancel", "ls", "workers":
			if err := runService(os.Args[1], os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	runLegacy()
}

func runLegacy() {
	var (
		dataset   = flag.String("graph", "wiki", "synthetic dataset name (livej, wiki, orkut, twi, fri, uk)")
		file      = flag.String("file", "", "edge-list file to load instead of a synthetic dataset")
		scale     = flag.Float64("scale", 0.25, "synthetic dataset scale factor")
		algoName  = flag.String("algo", "pagerank", "algorithm: pagerank, sssp, lpa, sa, multiphase")
		engine    = flag.String("engine", "hybrid", "engine: push, pushM, pull, b-pull, hybrid")
		workers   = flag.Int("workers", 5, "number of computational nodes")
		buffer    = flag.Int("buffer", 0, "message buffer B_i per worker in messages (0 = unlimited)")
		steps     = flag.Int("steps", 0, "maximum supersteps (0 = algorithm default)")
		source    = flag.Uint("source", 0, "source vertex for sssp")
		inMemory  = flag.Bool("inmemory", false, "sufficient-memory scenario (no disk)")
		ssd       = flag.Bool("ssd", false, "use the SSD (amazon) cost model instead of HDD")
		blocks    = flag.Int("blocks", 0, "Vblocks per worker (0 = Eq. 5/6 automatic)")
		cache     = flag.Int("cache", 0, "pull baseline vertex cache per worker (0 = unbounded)")
		threshold = flag.Int64("threshold", 0, "sending threshold in bytes (0 = 4MB default)")
		par       = flag.Int("parallelism", 0, "per-worker compute goroutines (0 = NumCPU/workers); results are identical at any value")
		verbose   = flag.Bool("v", false, "print per-superstep statistics")
		trace     = flag.String("trace", "", "write a JSONL superstep trace journal to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		metrics   = flag.Bool("metrics", false, "print the metrics registry after the run (implied by -debug-addr)")

		recovery  = flag.String("recovery", "", "recovery policy: scratch, resume, checkpoint, confined, reassign")
		maxRest   = flag.Int("max-restarts", 0, "with -recovery reassign: per-worker failure budget before its partition is adopted by a survivor (0 = default)")
		crashes   = flag.String("crashes", "", "inject worker crashes, comma-separated step:worker pairs (e.g. 4:1,7:0)")
		diskSpec  = flag.String("disk-faults", "", "inject seeded storage faults, comma-separated k=v spec: seed=1,enospc=0.01,torn=0.01,syncfail=0.05,bitflip=0.001,cut=500,max=3")
		stalls    = flag.String("stalls", "", "inject worker stalls, comma-separated step:worker pairs")
		ckptEvery = flag.Int("ckpt-every", 0, "checkpoint every N supersteps (0 = policy default)")
		deadline  = flag.Duration("barrier-deadline", 0, "barrier deadline for stall detection (0 = 250ms when stalls are scheduled)")
		tcp       = flag.Bool("tcp", false, "run worker communication over loopback TCP")
		codecName = flag.String("codec", "", "block codec for on-disk stores: none, delta, lz (default none)")
		chargePhy = flag.Bool("charge-physical", false, "cost model charges physical (post-codec) bytes instead of logical bytes")
		netSeed   = flag.Int64("net-seed", 0, "transport fault seed (with -tcp)")
		netDrop   = flag.Float64("net-drop", 0, "transport request/response drop probability (with -tcp)")
		netDup    = flag.Float64("net-dup", 0, "transport duplicate probability (with -tcp)")
	)
	flag.Parse()

	var g *hybridgraph.Graph
	var name string
	if *file != "" {
		var err error
		g, err = hybridgraph.LoadEdgeList(*file)
		if err != nil {
			fatal(err)
		}
		name = *file
	} else {
		ds, err := hybridgraph.DatasetByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = ds.Generate(*scale)
		name = ds.Name
	}

	prog, ok := hybridgraph.AlgorithmByName(*algoName, hybridgraph.VertexID(*source))
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	maxSteps := *steps
	if maxSteps == 0 {
		if *algoName == "pagerank" || *algoName == "lpa" {
			maxSteps = 5
		} else {
			maxSteps = 100
		}
	}
	profile := hybridgraph.HDDLocal
	if *ssd {
		profile = hybridgraph.SSDAmazon
	}
	cfg := hybridgraph.Config{
		Workers:         *workers,
		MsgBuf:          *buffer,
		InMemory:        *inMemory,
		MaxSteps:        maxSteps,
		Profile:         profile,
		BlocksPerWorker: *blocks,
		VertexCache:     *cache,
		SendThreshold:   *threshold,
		Parallelism:     *par,
		TracePath:       *trace,
		Recovery:        *recovery,
		MaxRestarts:     *maxRest,
		CheckpointEvery: *ckptEvery,
		BarrierDeadline: *deadline,
		TCP:             *tcp,
		Codec:           *codecName,
		ChargePhysical:  *chargePhy,
	}
	if *crashes != "" || *stalls != "" || *netDrop > 0 || *netDup > 0 || *diskSpec != "" {
		plan := hybridgraph.NewFaultPlan()
		for _, p := range parsePairs(*crashes) {
			plan.Crashes = append(plan.Crashes, hybridgraph.Crash{Step: p[0], Worker: p[1]})
		}
		var sts []hybridgraph.Stall
		for _, p := range parsePairs(*stalls) {
			sts = append(sts, hybridgraph.Stall{Step: p[0], Worker: p[1]})
		}
		plan.WithStalls(sts...)
		if *netDrop > 0 || *netDup > 0 {
			plan.Net = &hybridgraph.TransportFaults{Seed: *netSeed,
				DropRequest: *netDrop, DropResponse: *netDrop, Duplicate: *netDup}
		}
		if *diskSpec != "" {
			dc, err := parseDiskFaults(*diskSpec)
			if err != nil {
				fatal(err)
			}
			plan.WithDisk(dc)
		}
		cfg.FaultPlan = plan
	}
	var reg *hybridgraph.Metrics
	if *metrics || *debugAddr != "" {
		reg = hybridgraph.NewMetrics()
		cfg.Metrics = reg
	}
	if *debugAddr != "" {
		srv, err := hybridgraph.StartDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug    : http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr)
	}

	res, err := hybridgraph.Run(g, prog, cfg, hybridgraph.Engine(*engine))
	if err != nil {
		fatal(err)
	}
	res.Dataset = name

	fmt.Printf("job      : %s / %s / %s  (%d vertices, %d edges, %d workers, %s)\n",
		name, prog.Name(), *engine, g.NumVertices, g.NumEdges(), *workers, profile.Name)
	fmt.Printf("supersteps: %d\n", res.Supersteps())
	fmt.Printf("runtime  : %.4f s simulated (%.4f s wall)\n", res.SimSeconds, res.WallSeconds)
	fmt.Printf("disk     : %s (device total %d B)\n", res.IO.String(), res.IO.DevTotal())
	fmt.Printf("network  : %d B\n", res.NetBytes)
	fmt.Printf("memory   : %d B peak buffers\n", res.MaxMemBytes)
	fmt.Printf("loading  : %.4f s simulated, %d B written\n", res.LoadSimSeconds, res.LoadIO.Total())
	if *codecName != "" && *codecName != "none" {
		phys := res.PhysIO.Total() + res.LoadPhysIO.Total() + res.CheckpointPhysIO.Total() +
			res.ReplayPhysIO.Total() + res.MigrationPhysIO.Total()
		fmt.Printf("codec    : %s, %d B physical (%.2fx compression)\n",
			*codecName, phys, res.CompressionRatio)
	}
	if res.Restarts > 0 {
		fmt.Printf("recovery : %d restarts (%d stalls, %d confined), %d supersteps replayed, %.4f s simulated, %d B replayed, %d B logged\n",
			res.Restarts, res.Stalls, res.ConfinedRecoveries, res.ReplayedSupersteps,
			res.RecoverySimSeconds, res.ReplayIO.Total(), res.LogIO.Total())
	}

	if res.Reassignments > 0 {
		fmt.Printf("reassign : %d partitions adopted by survivors (degraded run), %d B migrated, %d B over the network\n",
			res.Reassignments, res.MigrationIO.Total(), res.MigrationNetBytes)
	}

	if res.DiskFaults > 0 || res.CheckpointWriteFailures > 0 {
		fmt.Printf("storage  : %d disk faults injected, %d checkpoint attempts abandoned\n",
			res.DiskFaults, res.CheckpointWriteFailures)
	}

	if *trace != "" {
		fmt.Printf("trace    : %s\n", *trace)
	}

	if *verbose {
		fmt.Println("\nstep  mode    updated  respond  produced  spilled  net-bytes  io-bytes   Qt")
		for _, s := range res.Steps {
			fmt.Printf("%4d  %-6s %8d %8d %9d %8d %10d %9d  %+.3g\n",
				s.Step, s.Mode, s.Updated, s.Responding, s.Produced, s.Spilled,
				s.NetBytes, s.IO.DevTotal(), s.Qt)
		}
	}

	if reg != nil {
		fmt.Println("\nmetrics:")
		reg.WriteTo(os.Stdout)
	}
}

// parseDiskFaults decodes the -disk-faults "k=v,k=v" spec into a seeded
// storage-fault description.
func parseDiskFaults(spec string) (hybridgraph.DiskFaults, error) {
	var cfg hybridgraph.DiskFaults
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("bad disk-fault field %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "enospc":
			cfg.WriteENOSPC, err = strconv.ParseFloat(v, 64)
		case "torn":
			cfg.TornWrite, err = strconv.ParseFloat(v, 64)
		case "syncfail":
			cfg.SyncFail, err = strconv.ParseFloat(v, 64)
		case "bitflip":
			cfg.ReadBitFlip, err = strconv.ParseFloat(v, 64)
		case "cut":
			cfg.PowerCutAfter, err = strconv.ParseInt(v, 10, 64)
		case "max":
			cfg.MaxFaults, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("unknown disk-fault key %q (want seed, enospc, torn, syncfail, bitflip, cut or max)", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad disk-fault value %q: %v", part, err)
		}
	}
	return cfg, nil
}

// parsePairs decodes "step:worker,step:worker" fault specs.
func parsePairs(spec string) [][2]int {
	var out [][2]int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var step, worker int
		if _, err := fmt.Sscanf(part, "%d:%d", &step, &worker); err != nil {
			fatal(fmt.Errorf("bad fault spec %q (want step:worker)", part))
		}
		out = append(out, [2]int{step, worker})
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridgraph:", err)
	os.Exit(1)
}
