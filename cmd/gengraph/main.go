// Command gengraph materialises the synthetic datasets standing in for
// the paper's Table 4 graphs, writes them as edge-list files, and reports
// degree statistics.
//
//	gengraph -list
//	gengraph -name twi -scale 0.5 -out twi.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridgraph"
	"hybridgraph/internal/graph"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list the dataset registry and exit")
		name  = flag.String("name", "", "dataset to generate")
		scale = flag.Float64("scale", 1.0, "scale factor on the vertex count")
		out   = flag.String("out", "", "write the graph to this edge-list file")
		stats = flag.Bool("stats", true, "print degree statistics")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-7s %-16s %9s %8s %10s %10s\n", "name", "type", "vertices", "avg-deg", "paper-V", "paper-E")
		for _, d := range hybridgraph.Datasets {
			fmt.Printf("%-7s %-16s %9d %8.1f %10s %10s\n",
				d.Name, d.PaperType, d.Vertices, d.AvgDegree, d.PaperVertices, d.PaperEdges)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -name required (or -list)")
		os.Exit(2)
	}
	ds, err := hybridgraph.DatasetByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	g := ds.Generate(*scale)
	if *stats {
		s := graph.Stats(g)
		fmt.Printf("%s @ scale %g: %d vertices, %d edges\n", ds.Name, *scale, g.NumVertices, g.NumEdges())
		fmt.Printf("degree: avg %.2f  p50 %d  p99 %d  max %d  gini %.3f  isolated %d\n",
			s.Avg, s.P50, s.P99, s.Max, s.Gini, s.Isolated)
	}
	if *out != "" {
		if err := hybridgraph.SaveEdgeList(*out, g); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
