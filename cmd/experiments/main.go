// Command experiments regenerates the paper's evaluation: every table and
// figure of Section 6 and the appendices, printed as text tables.
//
//	experiments -list
//	experiments -run fig8
//	experiments -all -scale 0.25 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hybridgraph/internal/diskio"
	"hybridgraph/internal/harness"
	"hybridgraph/internal/obs"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "", "experiment to run (fig2, fig7..fig26, table4, table5)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor")
		workers = flag.Int("workers", 5, "small-graph worker count")
		largeW  = flag.Int("large-workers", 10, "large-graph worker count")
		quick   = flag.Bool("quick", false, "trimmed datasets and sweeps")
		ssd     = flag.Bool("ssd", false, "default to the SSD cost model")
		csvDir  = flag.String("csv", "", "also write each table as <dir>/<id>.csv")
		trace   = flag.String("trace", "", "export one JSONL superstep trace journal per job into this directory")
		dbgAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while experiments run")
		par     = flag.Int("parallelism", 0, "per-worker compute goroutines (0 = NumCPU/workers)")
		chaos   = flag.Int64("chaos-seed", 0, "base seed of the chaos campaign's fault schedules (0 = default 1)")
		policy  = flag.String("recovery", "", "restrict the chaos/recovery experiments to one policy: scratch, resume, checkpoint, confined, reassign")
		codecNm = flag.String("codec", "", "block codec every disk-backed job runs with: none, delta, lz (results identical; physical bytes shrink)")
		outPath = flag.String("out", "", "override the bench/benchpar/benchcodec JSON artifact path")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-8s %s\n", e.Name, e.What)
		}
		return
	}
	opts := harness.Options{Scale: *scale, Workers: *workers, LargeWorkers: *largeW, Quick: *quick,
		Parallelism: *par, TraceDir: *trace, ChaosSeed: *chaos, Recovery: *policy,
		Codec: *codecNm, Out: *outPath}
	if *ssd {
		opts.Profile = diskio.SSDAmazon
	}
	if *dbgAddr != "" {
		opts.Metrics = obs.NewRegistry()
		srv, err := obs.StartDebug(*dbgAddr, opts.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: debug server at http://%s/metrics\n", srv.Addr)
	}

	var names []string
	switch {
	case *all:
		for _, e := range harness.Experiments {
			names = append(names, e.Name)
		}
	case *run != "":
		names = []string{*run}
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -run <name>, -all or -list")
		os.Exit(2)
	}

	for _, name := range names {
		exp, ok := harness.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", name)
			os.Exit(1)
		}
		start := time.Now()
		tables, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s — %s (took %.1fs)\n\n", exp.Name, exp.What, time.Since(start).Seconds())
		for _, tb := range tables {
			tb.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tb); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSV(dir string, tb *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tb.ID+".csv"))
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
