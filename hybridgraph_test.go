package hybridgraph_test

import (
	"math"
	"path/filepath"
	"testing"

	"hybridgraph"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := hybridgraph.GenRMAT(1000, 12000, 0.57, 0.19, 0.19, 1)
	res, err := hybridgraph.Run(g, hybridgraph.PageRank(0.85),
		hybridgraph.Config{Workers: 4, MsgBuf: 100, MaxSteps: 5}, hybridgraph.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps() != 5 {
		t.Fatalf("supersteps = %d, want 5", res.Supersteps())
	}
	var sum float64
	for _, r := range res.Values {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Rank mass stays near 1 (dangling mass leaks, so <= 1 + epsilon).
	if sum <= 0.1 || sum > 1.01 {
		t.Fatalf("total rank mass = %g", sum)
	}
}

func TestPublicAPIEnginesAgree(t *testing.T) {
	g := hybridgraph.GenWeb(800, 6400, 32, 0.8, 2)
	prog := hybridgraph.SSSP(0)
	cfg := hybridgraph.Config{Workers: 3, MsgBuf: 100, MaxSteps: 60, VertexCache: 100}
	var base []float64
	for _, e := range hybridgraph.Engines {
		if e == hybridgraph.PushM {
			continue // combinable only; SSSP qualifies but keep parity with base run order
		}
		res, err := hybridgraph.Run(g, prog, cfg, e)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if base == nil {
			base = res.Values
			continue
		}
		for v := range base {
			a, b := base[v], res.Values[v]
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("%s: vertex %d = %g, want %g", e, v, b, a)
			}
		}
	}
}

func TestPublicAPIDatasetRoundTrip(t *testing.T) {
	ds, err := hybridgraph.DatasetByName("orkut")
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Generate(0.05)
	path := filepath.Join(t.TempDir(), "orkut.txt")
	if err := hybridgraph.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := hybridgraph.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d after round trip", got.NumEdges(), g.NumEdges())
	}
	res, err := hybridgraph.Run(got, hybridgraph.LPA(),
		hybridgraph.Config{Workers: 2, MaxSteps: 3}, hybridgraph.BPull)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != got.NumVertices {
		t.Fatal("values length mismatch")
	}
}

func TestPublicAPIProfiles(t *testing.T) {
	if hybridgraph.HDDLocal.SRR >= hybridgraph.SSDAmazon.SRR {
		t.Fatal("SSD must be faster at random reads")
	}
	g := hybridgraph.GenUniform(500, 4000, 3)
	cfg := hybridgraph.Config{Workers: 3, MsgBuf: 50, MaxSteps: 4}
	cfg.Profile = hybridgraph.HDDLocal
	hdd, err := hybridgraph.Run(g, hybridgraph.PageRank(0.85), cfg, hybridgraph.Push)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = hybridgraph.SSDAmazon
	ssd, err := hybridgraph.Run(g, hybridgraph.PageRank(0.85), cfg, hybridgraph.Push)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.SimSeconds >= hdd.SimSeconds {
		t.Fatalf("SSD run (%.4f s) should beat HDD (%.4f s)", ssd.SimSeconds, hdd.SimSeconds)
	}
}
